// Package analysis is a dependency-free mini framework in the spirit of
// golang.org/x/tools/go/analysis, hosting the semtree-vet analyzer suite.
//
// The repo builds offline with a stdlib-only module graph, so we cannot
// vendor x/tools; instead this package defines the minimal Analyzer/Pass
// surface the suite needs, and cmd/semtree-vet provides two drivers: a
// standalone one built on `go list -export` and a `go vet -vettool`
// unitchecker-protocol one. Analyzers are pure functions of parsed,
// type-checked syntax, so they run identically under both drivers and
// under the golden-file test harness in this package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker in the suite.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //semtree:allow directives. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced,
	// shown by `semtree-vet -help`.
	Doc string

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// InTestFile reports whether pos lies in a _test.go file. Both drivers
// may feed test files into a pass (go vet compiles the test-augmented
// variant), so analyzers that scope themselves to library code must
// filter here rather than assume the file set is pre-filtered.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Run applies each analyzer to the package and returns the surviving
// diagnostics after //semtree:allow suppression, sorted by position.
// Directive problems (missing justification, unknown analyzer, unused
// directive) are themselves reported, attributed to DirectiveAnalyzer.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = applyDirectives(fset, files, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// pkgPathIs reports whether pkg's import path is name or ends in /name.
// Analyzer scoping works on path suffixes so the same analyzers apply to
// the real module ("semtree/internal/core") and to golden-test fixtures
// ("core").
func pkgPathIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}

// calleeFunc resolves the static callee of call, if it is a declared
// function or method (not a builtin, conversion, or indirect call
// through a plain function value).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeIsPkgFunc reports whether call statically resolves to the
// package-level function pkgName.funcName (pkgName matched by path
// suffix, so "cluster" matches semtree/internal/cluster).
func calleeIsPkgFunc(info *types.Info, call *ast.CallExpr, pkgName string, funcNames ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !pkgPathIs(fn.Pkg(), pkgName) {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, name := range funcNames {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and aliases down to a *types.Named, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamedType reports whether t (or *t) is the named type pkgName.typeName,
// with pkgName matched by import-path suffix.
func isNamedType(t types.Type, pkgName, typeName string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && pkgPathIs(obj.Pkg(), pkgName)
}
