package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveAnalyzer is the name under which problems with suppression
// directives themselves are reported. It is not a runnable analyzer and
// its diagnostics cannot be suppressed.
const DirectiveAnalyzer = "allowdirective"

// allowPrefix introduces a suppression: //semtree:allow <names>: <why>.
// The directive suppresses matching diagnostics on its own line or, when
// it is the only thing on its line, on the next line. Names may be a
// comma-separated list. The justification after the colon is mandatory:
// a suppression with no recorded reason is itself a diagnostic.
const allowPrefix = "//semtree:allow"

// ClockSealedDirective marks a whole file as clock-sealed for the
// injectedclock analyzer (see injectedclock.go).
const ClockSealedDirective = "//semtree:clocksealed"

type allowDirective struct {
	pos       token.Position // of the comment
	line      int            // line the directive applies to
	analyzers []string
	used      bool
}

// parseAllowDirectives extracts //semtree:allow directives from files,
// reporting malformed ones through report.
func parseAllowDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' && rest[0] != ':' {
					// e.g. //semtree:allowed — not ours.
					continue
				}
				names, why, ok := strings.Cut(rest, ":")
				if !ok || strings.TrimSpace(why) == "" {
					report(Diagnostic{
						Analyzer: DirectiveAnalyzer,
						Pos:      pos,
						Message:  "semtree:allow directive needs a justification: //semtree:allow <analyzer>: <why>",
					})
					continue
				}
				d := &allowDirective{pos: pos, line: pos.Line}
				// A comment alone on its line guards the next line;
				// a trailing comment guards its own line.
				if pos.Column == 1 || onlyWhitespaceBefore(fset, f, c) {
					d.line = pos.Line + 1
				}
				valid := true
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !known[name] {
						report(Diagnostic{
							Analyzer: DirectiveAnalyzer,
							Pos:      pos,
							Message:  "semtree:allow names unknown analyzer \"" + name + "\"",
						})
						valid = false
						continue
					}
					d.analyzers = append(d.analyzers, name)
				}
				if valid && len(d.analyzers) == 0 {
					report(Diagnostic{
						Analyzer: DirectiveAnalyzer,
						Pos:      pos,
						Message:  "semtree:allow directive names no analyzer",
					})
					continue
				}
				if len(d.analyzers) > 0 {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// onlyWhitespaceBefore reports whether comment c is the first token on
// its line, i.e. a standalone directive guarding the following line.
func onlyWhitespaceBefore(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// Walk the file for any node ending on the same line before the comment.
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == pos.Line {
			switch n.(type) {
			case *ast.Comment, *ast.CommentGroup:
			default:
				found = true
			}
		}
		return !found
	})
	return !found
}

// applyDirectives filters diags through the //semtree:allow directives
// found in files, appends diagnostics for malformed or unused
// directives, and returns the result. Only analyzers present in the run
// set participate in the unused-directive check, so a single-analyzer
// run does not complain about directives aimed at its siblings.
func applyDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	ran := map[string]bool{}
	for _, a := range AllAnalyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}

	var extra []Diagnostic
	directives := parseAllowDirectives(fset, files, known, func(d Diagnostic) { extra = append(extra, d) })

	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == DirectiveAnalyzer {
			out = append(out, d)
			continue
		}
		suppressed := false
		for _, dir := range directives {
			if dir.pos.Filename != d.Pos.Filename || dir.line != d.Pos.Line {
				continue
			}
			for _, name := range dir.analyzers {
				if name == d.Analyzer {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range directives {
		if dir.used {
			continue
		}
		// Only call a directive unused if every analyzer it names was
		// actually part of this run; otherwise we cannot know.
		allRan := true
		for _, name := range dir.analyzers {
			if !ran[name] {
				allRan = false
			}
		}
		if allRan {
			extra = append(extra, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				Pos:      dir.pos,
				Message:  "unused semtree:allow directive (nothing to suppress here); delete it",
			})
		}
	}
	return append(out, extra...)
}
