package analysis

import "testing"

// TestRepoIsAnalyzerClean runs the full suite over the repository
// itself — the same gate as the CI semtree-vet job, but inside the
// tier-1 test run, so a violation cannot land even when CI is skipped.
// Intentional exceptions carry //semtree:allow directives and are
// therefore invisible here; an unused or unjustified directive fails
// too.
func TestRepoIsAnalyzerClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	fset, pkgs, err := LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading the repository: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, cp := range pkgs {
		for _, terr := range cp.TypeErrors {
			t.Errorf("%s: %v", cp.Listed.ImportPath, terr)
		}
		diags, err := Run(fset, cp.Files, cp.Types, cp.Info, AllAnalyzers())
		if err != nil {
			t.Fatalf("%s: %v", cp.Listed.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
