package analysis

// AllAnalyzers returns the full semtree-vet suite, one analyzer per
// documented invariant (see the "Invariants → analyzers" table in
// ARCHITECTURE.md).
func AllAnalyzers() []*Analyzer {
	return []*Analyzer{
		CtxFirst,
		LockedCall,
		BoundaryOnce,
		TypedErr,
		GuardExact,
		InjectedClock,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range AllAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
