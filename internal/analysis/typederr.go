package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TypedErr enforces the typed-sentinel contract from PRs 3–4: callers
// classify admission/quota/deadline failures with errors.Is against the
// exported sentinels (ErrAdmissionRejected, ErrQuotaExhausted,
// ErrDeadlineBudget, ...), never with == on a sentinel or by matching
// error strings. The scheduler wraps sentinels with %w to attach
// context, so == silently stops matching the moment a call site gains a
// wrap — errors.Is is the only check that survives refactoring.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc: "error classification uses errors.Is against exported sentinels; " +
		"== on Err* values and error-string matching are banned",
	Run: runTypedErr,
}

func runTypedErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				x, y := ast.Unparen(n.X), ast.Unparen(n.Y)
				if sentinelName(pass, x) != "" || sentinelName(pass, y) != "" {
					name := sentinelName(pass, x)
					if name == "" {
						name = sentinelName(pass, y)
					}
					pass.Reportf(n.OpPos,
						"%s on sentinel %s breaks once the error is wrapped; use errors.Is(err, %s)",
						n.Op, name, name)
					return true
				}
				if isErrorStringCall(pass, x) || isErrorStringCall(pass, y) {
					pass.Reportf(n.OpPos,
						"comparing err.Error() text; classify with errors.Is against the exported sentinel")
				}
			case *ast.CallExpr:
				if calleeIsPkgFunc(pass.TypesInfo, n, "strings",
					"Contains", "HasPrefix", "HasSuffix", "EqualFold") {
					for _, arg := range n.Args {
						if isErrorStringCall(pass, ast.Unparen(arg)) {
							pass.Reportf(n.Pos(),
								"matching err.Error() text with strings.%s; classify with errors.Is against the exported sentinel",
								calleeFunc(pass.TypesInfo, n).Name())
							break
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelName returns the name of e when e references an exported (or
// package-local) error sentinel — a package-level var of type error
// whose name starts with "Err" — and "" otherwise. Comparisons against
// nil are not sentinel comparisons and stay legal.
func sentinelName(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Parent() == nil || obj.Pkg() == nil {
		return ""
	}
	// Package-level only: obj's parent scope is the package scope.
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	if !strings.HasPrefix(obj.Name(), "Err") || len(obj.Name()) <= 3 {
		return ""
	}
	if !types.Implements(obj.Type(), errorInterface(pass)) &&
		!types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
		return ""
	}
	return obj.Name()
}

// isErrorStringCall reports whether e is a call of the form err.Error().
func isErrorStringCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	t := pass.TypeOf(sel.X)
	return t != nil && types.Implements(t, errorInterface(pass)) ||
		t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func errorInterface(pass *Pass) *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}
