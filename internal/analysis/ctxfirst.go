package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the context-propagation invariant from PR 2: any
// function that accepts a context.Context takes it as the first
// parameter, and library packages never mint their own root contexts
// with context.Background()/context.TODO() — roots belong to package
// main and to tests. Handlers that run detached by documented contract
// (e.g. the fabric's one-way mailbox deliveries) carry a justified
// //semtree:allow ctxfirst directive instead.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters come first, and library packages do not call " +
		"context.Background or context.TODO; cancellation roots belong to main and tests",
	Run: runCtxFirst,
}

func isContextType(t types.Type) bool {
	return t != nil && isNamedType(t, "context", "Context")
}

func runCtxFirst(pass *Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if pass.InTestFile(n.Pos()) {
					return true
				}
				checkCtxPosition(pass, n.Type)
			case *ast.FuncLit:
				if pass.InTestFile(n.Pos()) {
					return true
				}
				checkCtxPosition(pass, n.Type)
			case *ast.CallExpr:
				if isMain || pass.InTestFile(n.Pos()) {
					return true
				}
				if calleeIsPkgFunc(pass.TypesInfo, n, "context", "Background", "TODO") {
					fn := calleeFunc(pass.TypesInfo, n)
					pass.Reportf(n.Pos(),
						"context.%s in library code: thread the caller's context instead (roots belong to main and tests)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxPosition reports a context.Context parameter that is not the
// first parameter. The receiver of a method does not count as a
// parameter; variadic and grouped parameter lists are handled.
func checkCtxPosition(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContextType(t) && idx != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		idx += n
	}
}
