package analysis

// Golden-file tests in the style of x/tools' analysistest: each fixture
// package under testdata/src/ annotates the lines where diagnostics are
// expected with `// want "regexp"` comments. Fixtures are type-checked
// for real — stdlib dependencies resolve through gc export data from
// the build cache, and fixture-local dependencies (like the fake
// cluster package) resolve from testdata/src.

import (
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var (
	goldenFset  = token.NewFileSet()
	goldenCache = map[string]*CheckedPackage{}
	stdExports  = map[string]string{}
	stdImporter = ExportImporter(goldenFset, stdExports)
)

// ensureStdExports resolves export-data files for stdlib import paths
// via one `go list -export -deps` call per batch of new paths.
func ensureStdExports(t *testing.T, paths []string) {
	t.Helper()
	var need []string
	for _, p := range paths {
		if _, ok := stdExports[p]; !ok {
			need = append(need, p)
		}
	}
	if len(need) == 0 {
		return
	}
	listed, err := GoList(".", append([]string{"-export", "-deps", "-json"}, need...)...)
	if err != nil {
		t.Fatalf("resolving stdlib exports: %v", err)
	}
	for _, p := range listed {
		if p.Export != "" {
			stdExports[p.ImportPath] = p.Export
		}
	}
}

type goldenImporter struct {
	t       *testing.T
	srcRoot string
}

func (gi *goldenImporter) Import(path string) (*types.Package, error) {
	if cp, ok := goldenCache[path]; ok {
		return cp.Types, nil
	}
	if dirExists(filepath.Join(gi.srcRoot, path)) {
		return loadGolden(gi.t, gi.srcRoot, path).Types, nil
	}
	return stdImporter.Import(path)
}

func dirExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// loadGolden parses and type-checks the fixture package at
// srcRoot/path, loading fixture-local imports recursively.
func loadGolden(t *testing.T, srcRoot, path string) *CheckedPackage {
	t.Helper()
	if cp, ok := goldenCache[path]; ok {
		return cp
	}
	dir := filepath.Join(srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		t.Fatalf("fixture %s has no Go files", path)
	}

	// Resolve imports first: fixture-local packages recurse, the rest
	// resolve as stdlib export data.
	var std []string
	for _, name := range filenames {
		f, err := parser.ParseFile(goldenFset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, spec := range f.Imports {
			impPath, _ := strconv.Unquote(spec.Path.Value)
			if dirExists(filepath.Join(srcRoot, impPath)) {
				loadGolden(t, srcRoot, impPath)
			} else {
				std = append(std, impPath)
			}
		}
	}
	ensureStdExports(t, std)

	cp, err := TypeCheck(goldenFset, path, filenames, &goldenImporter{t: t, srcRoot: srcRoot})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	for _, terr := range cp.TypeErrors {
		t.Errorf("fixture %s: %v", path, terr)
	}
	if t.Failed() {
		t.FailNow()
	}
	goldenCache[path] = cp
	return cp
}

type wantExp struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants extracts `// want "re" ["re" ...]` expectations. The
// marker may appear inside another comment (e.g. trailing a directive
// under test).
func collectWants(t *testing.T, cp *CheckedPackage) []*wantExp {
	t.Helper()
	const marker = "// want "
	var wants []*wantExp
	for _, f := range cp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, marker)
				if idx < 0 {
					continue
				}
				pos := goldenFset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[idx+len(marker):])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want expectation %q", pos, rest)
					}
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %q", pos, q)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					wants = append(wants, &wantExp{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}

// runGolden analyzes one fixture package and matches the produced
// diagnostics against its want expectations, both ways.
func runGolden(t *testing.T, analyzers []*Analyzer, path string) {
	t.Helper()
	cp := loadGolden(t, "testdata/src", path)
	diags, err := Run(goldenFset, cp.Files, cp.Types, cp.Info, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, cp)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestCtxFirstGolden(t *testing.T)   { runGolden(t, []*Analyzer{CtxFirst}, "ctxfirst") }
func TestLockedCallGolden(t *testing.T) { runGolden(t, []*Analyzer{LockedCall}, "lockedcall") }
func TestBoundaryOnceGolden(t *testing.T) {
	runGolden(t, []*Analyzer{BoundaryOnce}, "boundaryonce/core")
}
func TestTypedErrGolden(t *testing.T) { runGolden(t, []*Analyzer{TypedErr}, "typederr") }
func TestGuardExactGolden(t *testing.T) {
	runGolden(t, []*Analyzer{GuardExact}, "guardexact/core")
}
func TestInjectedClockGolden(t *testing.T) {
	runGolden(t, []*Analyzer{InjectedClock}, "injectedclock")
}

// TestAllowDirectiveGolden exercises the directive machinery itself:
// missing justification, unknown analyzer names, unused directives.
func TestAllowDirectiveGolden(t *testing.T) {
	runGolden(t, []*Analyzer{CtxFirst}, "allowdirective")
}

// TestByName keeps the registry and the directive vocabulary in sync.
func TestByName(t *testing.T) {
	for _, a := range AllAnalyzers() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
