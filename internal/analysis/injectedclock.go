package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// InjectedClock guards the fake-clock seam from PR 4: scheduler, quota,
// and cost-model logic read time exclusively through an injected
// `func() time.Time`, so tests can drive refill/admission decisions
// deterministically. A stray time.Now() in those paths silently
// bypasses the fake clock, making quota tests flaky and admission
// estimates untestable.
//
// Two signals seal a scope:
//   - a file-level //semtree:clocksealed directive seals every function
//     in the file;
//   - a method whose receiver struct carries a `func() time.Time` field
//     is sealed implicitly — the seam is right there, use it.
//
// Bare references to time.Now (no call) stay legal: `clock: time.Now`
// is exactly how the production clock is injected.
var InjectedClock = &Analyzer{
	Name: "injectedclock",
	Doc: "no time.Now/Since/Until calls in clock-sealed files or in methods of types " +
		"that carry an injected func() time.Time seam",
	Run: runInjectedClock,
}

func runInjectedClock(pass *Pass) error {
	for _, file := range pass.Files {
		sealedFile := fileIsClockSealed(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			sealed := sealedFile || receiverHasClockSeam(pass, fd)
			if !sealed {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if calleeIsPkgFunc(pass.TypesInfo, call, "time", "Now", "Since", "Until") {
					fn := calleeFunc(pass.TypesInfo, call)
					pass.Reportf(call.Pos(),
						"time.%s in clock-sealed code; read time through the injected clock seam so fake-clock tests stay deterministic",
						fn.Name())
				}
				return true
			})
		}
	}
	return nil
}

// fileIsClockSealed reports whether file carries a
// //semtree:clocksealed directive.
func fileIsClockSealed(file *ast.File) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Text == ClockSealedDirective ||
				strings.HasPrefix(c.Text, ClockSealedDirective+" ") {
				return true
			}
		}
	}
	return false
}

// receiverHasClockSeam reports whether fd is a method on a struct type
// that has a direct field of type func() time.Time.
func receiverHasClockSeam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	named := namedOf(pass.TypeOf(fd.Recv.List[0].Type))
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		sig, ok := st.Field(i).Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if isNamedType(sig.Results().At(0).Type(), "time", "Time") {
			return true
		}
	}
	return false
}
