package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockedCall enforces the deadlock/tail-latency invariant made real by
// the TCP fabric: no synchronous fabric traffic (Fabric.Call, Send,
// cluster.CallRetry) and no channel send may be reachable while a
// partition/bucket mutex is held. A blocked remote call under a held
// lock serializes every other request on the partition and, in the
// worst case (A waits on B while B waits on A's lock), deadlocks the
// pair. Handlers that are safe by construction — e.g. traversals whose
// remote hops only ever descend the partition DAG — carry a justified
// //semtree:allow lockedcall directive at the call site.
//
// The analysis is intraprocedural over lock regions with a
// package-local "reaches the fabric" closure: a call to a same-package
// function that (transitively) performs fabric traffic is flagged just
// like a direct Fabric.Call. Calls launched with `go` do not block the
// caller and are excluded.
var LockedCall = &Analyzer{
	Name: "lockedcall",
	Doc: "no Fabric.Call/Send, cluster.CallRetry, or channel send may be reachable " +
		"while a sync.Mutex/RWMutex is held",
	Run: runLockedCall,
}

func runLockedCall(pass *Pass) error {
	lc := &lockedCallPass{
		Pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		reaching: map[*types.Func]bool{},
	}
	lc.buildReachingSet()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			lc.walkStmts(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

type lockedCallPass struct {
	*Pass
	decls    map[*types.Func]*ast.FuncDecl
	reaching map[*types.Func]bool // transitively performs fabric traffic
}

// buildReachingSet computes the package-local closure of functions that
// perform fabric traffic, directly or through same-package callees.
func (lc *lockedCallPass) buildReachingSet() {
	type funcInfo struct {
		direct  bool
		callees []*types.Func
	}
	infos := map[*types.Func]*funcInfo{}

	for _, file := range lc.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := lc.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			lc.decls[obj] = fd
			fi := &funcInfo{}
			infos[obj] = fi
			inspectSync(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lc.isFabricCall(call) {
					fi.direct = true
					return true
				}
				if callee := calleeFunc(lc.TypesInfo, call); callee != nil &&
					callee.Pkg() == lc.Pkg {
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
		}
	}

	// Fixpoint over the call graph.
	for changed := true; changed; {
		changed = false
		for obj, fi := range infos {
			if lc.reaching[obj] {
				continue
			}
			hit := fi.direct
			for _, callee := range fi.callees {
				if lc.reaching[callee] {
					hit = true
					break
				}
			}
			if hit {
				lc.reaching[obj] = true
				changed = true
			}
		}
	}
}

// isFabricCall reports whether call is direct fabric traffic: a Call or
// Send method on any type from the cluster package (the Fabric
// interface or a concrete fabric), or the package-level retry helper
// cluster.CallRetry.
func (lc *lockedCallPass) isFabricCall(call *ast.CallExpr) bool {
	if calleeIsPkgFunc(lc.TypesInfo, call, "cluster", "CallRetry") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Call" && sel.Sel.Name != "Send" {
		return false
	}
	named := namedOf(lc.TypeOf(sel.X))
	return named != nil && named.Obj().Pkg() != nil && pkgPathIs(named.Obj().Pkg(), "cluster")
}

// walkStmts walks a statement list in textual order, tracking the set
// of held mutexes. Branch bodies get a copy of the set, so a branch
// that releases-and-returns does not unlock the fall-through path.
// defer mu.Unlock() keeps the region open to the end of the function,
// which is exactly the conservative reading we want.
func (lc *lockedCallPass) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		lc.walkStmt(stmt, held)
	}
}

func (lc *lockedCallPass) walkStmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockOp(lc.Pass, s.X); ok {
			if op == "Lock" || op == "RLock" {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		lc.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() does not end the region; other deferred
		// work runs after the function body and is not checked here.
	case *ast.GoStmt:
		// Asynchronous: does not block under the lock.
	case *ast.BlockStmt:
		lc.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		lc.checkExpr(s.Cond, held)
		lc.walkStmts(s.Body.List, cloneSet(held))
		if s.Else != nil {
			lc.walkStmt(s.Else, cloneSet(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lc.checkExpr(s.Cond, held)
		}
		lc.walkStmts(s.Body.List, cloneSet(held))
	case *ast.RangeStmt:
		lc.checkExpr(s.X, held)
		lc.walkStmts(s.Body.List, cloneSet(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lc.checkExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				lc.walkStmts(cc.Body, cloneSet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				lc.walkStmts(cc.Body, cloneSet(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				branch := cloneSet(held)
				if cc.Comm != nil {
					lc.walkStmt(cc.Comm, branch)
				}
				lc.walkStmts(cc.Body, branch)
			}
		}
	case *ast.LabeledStmt:
		lc.walkStmt(s.Stmt, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			lc.Reportf(s.Arrow, "channel send while %s held; release the mutex first", heldList(held))
		}
		lc.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lc.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lc.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						lc.checkExpr(e, held)
					}
				}
			}
		}
	}
}

// checkExpr reports fabric traffic and channel sends inside e while any
// mutex is held. Function literals are treated as executing inline —
// conservative for closures that are stored for later, correct for the
// common immediately-invoked and callback forms.
func (lc *lockedCallPass) checkExpr(e ast.Expr, held map[string]bool) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lc.isFabricCall(call) {
			lc.Reportf(call.Pos(), "fabric %s while %s held; a blocked remote call under a partition lock serializes (or deadlocks) the partition",
				callName(call), heldList(held))
			return true
		}
		if callee := calleeFunc(lc.TypesInfo, call); callee != nil && lc.reaching[callee] {
			lc.Reportf(call.Pos(), "call to %s, which reaches the fabric, while %s held",
				callee.Name(), heldList(held))
		}
		return true
	})
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex and returns a stable key for the mutex expression.
func lockOp(pass *Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	t := pass.TypeOf(sel.X)
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return "", "", false
	}
	return exprKey(sel.X), sel.Sel.Name, true
}

// exprKey renders a mutex expression to a stable string key.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[...]"
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	default:
		return fmt.Sprintf("%T", e)
	}
}

func cloneSet(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}

// inspectSync is ast.Inspect minus go statements: work launched with
// `go` does not block the launching goroutine.
func inspectSync(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		return f(n)
	})
}
