package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// This file is the standalone package loader behind
// `semtree-vet ./...`: it shells out to `go list -export -deps -json`
// for the build plan, parses each target package from source, and
// type-checks it against the gc export data of its dependencies. That
// keeps the whole pipeline on the standard library — no x/tools — while
// matching the compiler's view of the code exactly.

// A ListedPackage is the subset of `go list -json` output the loader
// consumes.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// A CheckedPackage is one fully parsed and type-checked target package.
type CheckedPackage struct {
	Listed     *ListedPackage
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []types.Error
}

// GoList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func GoList(dir string, args ...string) ([]*ListedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through exports, a map from import path to gc export-data file (as
// produced by `go list -export`). Resolved packages are cached for the
// life of the importer.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewTypesInfo allocates a types.Info with every map the analyzers use.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// TypeCheck parses filenames and type-checks them as package importPath
// using imp for dependencies. Type errors are collected, not fatal: the
// analyzers degrade gracefully on partial type information, and the
// driver decides whether to surface them.
func TypeCheck(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) (*CheckedPackage, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	cp := &CheckedPackage{Files: files, Info: NewTypesInfo()}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if terr, ok := err.(types.Error); ok {
				cp.TypeErrors = append(cp.TypeErrors, terr)
			}
		},
	}
	// Check returns the package even on soft errors.
	cp.Types, _ = conf.Check(importPath, fset, files, cp.Info)
	return cp, nil
}

// LoadPackages loads, parses, and type-checks the packages matching
// patterns in module directory dir. Dependencies are consumed as gc
// export data; only the matched (non-dep-only) packages are parsed from
// source and returned.
func LoadPackages(dir string, patterns []string) (*token.FileSet, []*CheckedPackage, error) {
	listArgs := append([]string{"-export", "-deps", "-json"}, patterns...)
	listed, err := GoList(dir, listArgs...)
	if err != nil {
		return nil, nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)

	var out []*CheckedPackage
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		var filenames []string
		for _, f := range p.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(p.Dir, f)
			}
			filenames = append(filenames, f)
		}
		cp, err := TypeCheck(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, nil, err
		}
		cp.Listed = p
		out = append(out, cp)
	}
	return fset, out, nil
}
