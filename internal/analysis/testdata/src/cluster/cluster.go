// Package cluster is a miniature stand-in for semtree/internal/cluster,
// just enough surface for the lockedcall fixtures: the analyzer matches
// fabric types by package-path suffix, so this fixture package
// exercises the same detection paths as the real one.
package cluster

import "context"

type NodeID int

type Fabric interface {
	Call(ctx context.Context, from, to NodeID, req any) (any, error)
	Send(from, to NodeID, req any) error
}

func CallRetry(ctx context.Context, f Fabric, from, to NodeID, req any, attempts int) (any, error) {
	var resp any
	var err error
	for i := 0; i < attempts; i++ {
		resp, err = f.Call(ctx, from, to, req)
		if err == nil {
			return resp, nil
		}
	}
	return nil, err
}
