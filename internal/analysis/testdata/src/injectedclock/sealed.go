// sealed.go exercises the file-level seal: every function here is
// clock-sealed regardless of receiver.

//semtree:clocksealed

package injectedclock

import "time"

func wallLatency(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in clock-sealed code"
}

func observedLatency(start time.Time) time.Duration {
	//semtree:allow injectedclock: boundary metric exported to the operator dashboard
	return time.Since(start)
}
