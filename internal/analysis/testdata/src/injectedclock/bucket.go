package injectedclock

import "time"

type bucket struct {
	now    func() time.Time // the injected clock seam
	tokens float64
	last   time.Time
}

func (b *bucket) refill() {
	t := b.now() // legal: reading through the seam
	elapsed := t.Sub(b.last)
	b.tokens += elapsed.Seconds()
	b.last = time.Now() // want "time.Now in clock-sealed code"
}

func (b *bucket) resetClock() {
	b.now = time.Now // legal: a bare reference injects the production clock
}

func newBucket() *bucket {
	return &bucket{now: time.Now, last: time.Now()} // legal: constructor is not a method of the sealed type
}
