package allowdirective

import "context"

func missingWhy() context.Context {
	//semtree:allow ctxfirst // want "needs a justification"
	return context.Background() // want "context.Background in library code"
}

func unknownName() {
	var x int
	_ = x //semtree:allow nosuchanalyzer: misremembered the name // want "unknown analyzer"
}

func unusedDirective(ctx context.Context) context.Context {
	//semtree:allow ctxfirst: nothing on the next line actually violates // want "unused semtree:allow directive"
	return ctx
}
