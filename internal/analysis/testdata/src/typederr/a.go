package typederr

import (
	"errors"
	"strings"
)

var ErrQuotaExhausted = errors.New("quota exhausted")

func classify(err error) int {
	if errors.Is(err, ErrQuotaExhausted) { // legal: survives wrapping
		return 1
	}
	if err == ErrQuotaExhausted { // want "on sentinel ErrQuotaExhausted"
		return 2
	}
	if err != nil && strings.Contains(err.Error(), "quota") { // want "matching err.Error"
		return 3
	}
	if err != nil && err.Error() == "quota exhausted" { // want "comparing err.Error"
		return 4
	}
	if err == nil { // legal: nil checks are not sentinel comparisons
		return 0
	}
	//semtree:allow typederr: interop with a legacy API that never wraps
	if err == ErrQuotaExhausted {
		return 5
	}
	return -1
}
