package core

type node struct {
	splitDim int
	splitVal float64
}

type Config struct {
	PlaneGuardOnly bool
}

// guardSq is a guard kernel: plane arithmetic is its job.
func guardSq(q []float64, n *node) float64 {
	d := q[n.splitDim] - n.splitVal
	return d * d
}

func badPrune(q []float64, n *node, radiusSq float64) bool {
	d := q[n.splitDim] - n.splitVal // want "raw splitting-plane arithmetic outside the region guard"
	return d*d > radiusSq
}

func guardedPrune(q []float64, n *node, radiusSq float64) bool {
	// Legal: this function routes pruning through the guard kernel, so
	// computing the plane distance to hand over is intended.
	d := q[n.splitDim] - n.splitVal
	_ = d
	return guardSq(q, n) > radiusSq
}

func ablationPrune(cfg Config, q []float64, n *node, radiusSq float64) bool {
	if cfg.PlaneGuardOnly {
		d := q[n.splitDim] - n.splitVal // legal: behind the ablation lever
		return d*d > radiusSq
	}
	return false
}

func annotated(q []float64, n *node) float64 {
	//semtree:allow guardexact: teaching example outside any search path
	return q[n.splitDim] - n.splitVal
}
