package core

import (
	"math"
	"sort"
)

func worstDistance(dists []float64) float64 {
	out := 0.0
	for _, d := range dists {
		out = math.Max(out, math.Sqrt(d)) // want "math.Sqrt outside the client boundary"
	}
	return out
}

func orderResults(xs []float64) {
	sort.Float64s(xs) // want "sorting outside the client boundary"
}

func rankCandidates(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "sorting outside the client boundary"
}

func buildOrder(xs []float64) {
	//semtree:allow boundaryonce: construction-time median sort, not on the query-result path
	sort.Float64s(xs)
}
