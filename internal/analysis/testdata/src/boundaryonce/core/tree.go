package core

import (
	"math"
	"sort"
)

// tree.go is the allowlisted client boundary for package core: the one
// place where squared distances become distances and results get their
// final order.
func Finalize(dists []float64) {
	for i, d := range dists {
		dists[i] = math.Sqrt(d)
	}
	sort.Float64s(dists)
}
