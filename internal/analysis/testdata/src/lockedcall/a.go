package lockedcall

import (
	"context"
	"sync"

	"cluster"
)

type part struct {
	mu     sync.Mutex
	state  sync.RWMutex
	fab    cluster.Fabric
	notify chan int
}

func (p *part) bad(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.fab.Call(ctx, 1, 2, nil) // want "fabric Call while p.mu held"
	return err
}

func (p *part) badRLock() {
	p.state.RLock()
	defer p.state.RUnlock()
	_ = p.fab.Send(1, 2, nil) // want "fabric Send while p.state held"
}

func (p *part) badSend() {
	p.mu.Lock()
	p.notify <- 1 // want "channel send while p.mu held"
	p.mu.Unlock()
}

func (p *part) remote(ctx context.Context) error {
	_, err := cluster.CallRetry(ctx, p.fab, 1, 2, nil, 3)
	return err
}

func (p *part) badTransitive(ctx context.Context) {
	p.mu.Lock()
	_ = p.remote(ctx) // want "call to remote, which reaches the fabric, while p.mu held"
	p.mu.Unlock()
}

func (p *part) legalAfterUnlock(ctx context.Context) error {
	p.mu.Lock()
	p.mu.Unlock()
	_, err := p.fab.Call(ctx, 1, 2, nil)
	return err
}

func (p *part) legalEarlyReturnBranch(ctx context.Context, empty bool) error {
	p.mu.Lock()
	if empty {
		p.mu.Unlock()
		_, err := p.fab.Call(ctx, 1, 2, nil)
		return err
	}
	_ = p.remote // method value, not a call
	p.mu.Unlock()
	return nil
}

func (p *part) legalAsync(ctx context.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		_, _ = p.fab.Call(ctx, 1, 2, nil)
	}()
}

func (p *part) allowed(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	//semtree:allow lockedcall: remote hops strictly descend the partition DAG; no lock cycle is possible
	_, err := p.fab.Call(ctx, 1, 2, nil)
	return err
}

// The migration shape: a repack handler must never drain a bucket to
// its destination while the partition write lock is held — the
// destination's reply path can need this partition, and the call
// blocks every query for the whole round trip.
func (p *part) badMigrateDrain(ctx context.Context, bucket []int) error {
	p.state.Lock()
	defer p.state.Unlock()
	for range bucket {
		if _, err := p.fab.Call(ctx, 1, 2, nil); err != nil { // want "fabric Call while p.state held"
			return err
		}
	}
	return nil
}

// The bulk-adopt shape: a bulk-add handler descends and grafts the
// local entries under one write lock, but entries that resolve to a
// foreign child must be forwarded with the lock released — the
// destination may be mid-spill and call back into this partition.
func (p *part) badBulkAdopt(ctx context.Context, batch []int) error {
	p.state.Lock()
	defer p.state.Unlock()
	for _, e := range batch {
		if e%2 == 0 {
			continue // grafted locally
		}
		if _, err := p.fab.Call(ctx, 1, 2, nil); err != nil { // want "fabric Call while p.state held"
			return err
		}
	}
	return nil
}

// The legal bulk-adopt version: group the foreign entries under the
// lock, forward the groups after the unlock.
func (p *part) legalBulkAdopt(ctx context.Context, batch []int) error {
	p.state.Lock()
	var remote []int
	for _, e := range batch {
		if e%2 == 0 {
			continue // grafted locally
		}
		remote = append(remote, e)
	}
	p.state.Unlock()
	for range remote {
		if _, err := p.fab.Call(ctx, 1, 2, nil); err != nil {
			return err
		}
	}
	return nil
}

// The legal phased version: snapshot under the lock, drain with no
// lock held, re-lock only to commit the parent-edge flip.
func (p *part) legalMigratePhased(ctx context.Context, bucket []int) error {
	p.state.Lock()
	snapshot := append([]int(nil), bucket...)
	p.state.Unlock()
	for range snapshot {
		if _, err := p.fab.Call(ctx, 1, 2, nil); err != nil {
			return err
		}
	}
	p.state.Lock()
	snapshot = snapshot[:0]
	p.state.Unlock()
	return nil
}
