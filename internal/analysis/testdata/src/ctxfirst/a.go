package ctxfirst

import "context"

// Query is the legal shape: context first, threaded through.
func Query(ctx context.Context, k int) error {
	return probe(ctx, k)
}

func probe(ctx context.Context, k int) error {
	_ = ctx
	_ = k
	return nil
}

func Bad(k int, ctx context.Context) error { // want "context.Context must be the first parameter"
	return probe(ctx, k)
}

func badLit() {
	f := func(n int, ctx context.Context) { _ = n } // want "context.Context must be the first parameter"
	f(1, context.TODO())                            // want "context.TODO in library code"
}

func root() context.Context {
	return context.Background() // want "context.Background in library code"
}

func detachedRoot() context.Context {
	//semtree:allow ctxfirst: detached maintenance op runs to completion by documented contract
	return context.Background()
}
