package analysis

import (
	"go/ast"
	"go/token"
)

// GuardExact protects the exact-pruning invariant from PR 5: pruning
// decisions in search/dispatch paths go through the region guard
// (BoxMinSq / guardSq / childBoxMinSq), which ranks subtrees by true
// min-distance to the query box. Raw splitting-plane arithmetic
// (q[dim] - splitVal) is the PR-1-era lower bound that under-prunes in
// high dimensions and over-prunes after rebalances; it is only legal
// inside the guard implementations themselves or in code that is
// explicitly gated on Config.PlaneGuardOnly (the ablation lever that
// reproduces the paper's plane-only baseline).
var GuardExact = &Analyzer{
	Name: "guardexact",
	Doc: "splitting-plane distance arithmetic in internal/core and internal/kdtree must " +
		"live inside the region guard (BoxMinSq/guardSq/childBoxMinSq) or behind Config.PlaneGuardOnly",
	Run: runGuardExact,
}

// guardFuncs are the blessed homes of plane arithmetic: the guard
// kernels themselves.
var guardFuncs = map[string]bool{
	"guardSq":       true,
	"childBoxMinSq": true,
	"BoxMinSq":      true,
}

func runGuardExact(pass *Pass) error {
	if !pkgPathIs(pass.Pkg, "core") && !pkgPathIs(pass.Pkg, "kdtree") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if guardFuncs[fd.Name.Name] {
				continue // the guard implementation itself
			}
			if funcTouchesGuard(pass, fd) {
				continue // routes its pruning through the guard
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || bin.Op != token.SUB {
					return true
				}
				if isSplitValRef(bin.X) || isSplitValRef(bin.Y) {
					pass.Reportf(bin.OpPos,
						"raw splitting-plane arithmetic outside the region guard; prune via BoxMinSq/guardSq or gate on Config.PlaneGuardOnly")
				}
				return true
			})
		}
	}
	return nil
}

// funcTouchesGuard reports whether fd either calls one of the guard
// kernels or references the PlaneGuardOnly ablation switch — both mark
// the function as guard-aware, where incidental plane arithmetic (e.g.
// computing the plane distance to hand to guardSq) is intended.
func funcTouchesGuard(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil && guardFuncs[fn.Name()] {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "PlaneGuardOnly" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "PlaneGuardOnly" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSplitValRef reports whether e is a selector or identifier naming
// the splitting-plane value field (splitVal / SplitVal).
func isSplitValRef(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name == "splitVal" || e.Sel.Name == "SplitVal"
	case *ast.Ident:
		return e.Name == "splitVal" || e.Name == "SplitVal"
	}
	return false
}
