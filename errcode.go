package semtree

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"semtree/internal/triple"
)

// This file is the wire-stable error-code registry: every exported
// sentinel error of the facade carries a stable numeric code, so a
// server-side rejection can cross a process boundary as (code, message)
// and decode on the client to the *same* sentinel under errors.Is. The
// codes are part of the serving tier's wire contract — once assigned,
// a code never changes meaning and is never reused (append-only, like
// the snapshot version). The registry-completeness test reflects over
// the package's exported Err* declarations, so a new sentinel without
// a code fails the build.

// ErrorCode is a stable numeric identifier for one sentinel error.
// Code 0 (CodeUnknown) is reserved for errors without a registered
// sentinel; codes 1–63 are reserved for this package, 64 and up for
// the serving tier (internal/serve registers its own sentinels at
// init). Codes are wire-stable: they never change meaning.
type ErrorCode uint32

// The facade's assigned codes. Append new codes; never renumber.
const (
	// CodeUnknown marks an error with no registered sentinel: the
	// message still crosses the wire, but the client cannot match it
	// with errors.Is beyond the generic failure.
	CodeUnknown ErrorCode = 0
	// CodeAdmissionRejected is ErrAdmissionRejected.
	CodeAdmissionRejected ErrorCode = 1
	// CodeDeadlineBudget is ErrDeadlineBudget.
	CodeDeadlineBudget ErrorCode = 2
	// CodeQuotaExhausted is ErrQuotaExhausted.
	CodeQuotaExhausted ErrorCode = 3
	// CodeSnapshotCorrupt is ErrSnapshotCorrupt.
	CodeSnapshotCorrupt ErrorCode = 4
	// CodeUnindexedID is the typed ErrUnindexedID; its Detail carries
	// the offending triple ID, so the decoded error matches errors.As
	// with the ID intact.
	CodeUnindexedID ErrorCode = 5
	// CodeCanceled is context.Canceled: the query's own context was
	// cancelled (client-side or propagated to the server).
	CodeCanceled ErrorCode = 6
	// CodeDeadlineExceeded is context.DeadlineExceeded: the query's
	// deadline expired before the answer was complete.
	CodeDeadlineExceeded ErrorCode = 7
)

// codedSentinel is one registry entry.
type codedSentinel struct {
	code ErrorCode
	err  error
}

var (
	errRegistryMu sync.RWMutex
	errRegistry   []codedSentinel         // match order for CodeOf
	errByCode     = map[ErrorCode]error{} // decode table
	codeBySent    = map[error]ErrorCode{} // duplicate-registration guard
)

// RegisterErrorCode assigns a wire code to a sentinel error. The
// facade's own sentinels are registered at init; the serving tier
// registers its protocol-level sentinels (auth, draining, malformed
// frames) in the 64+ range. Registration panics on a reused code, a
// re-registered sentinel, code 0 or a nil sentinel — a collision is a
// programming error that would silently corrupt the wire contract.
// CodeOf matches sentinels in registration order with errors.Is.
func RegisterErrorCode(c ErrorCode, sentinel error) {
	if c == CodeUnknown {
		panic("semtree: cannot register CodeUnknown")
	}
	if sentinel == nil {
		panic("semtree: cannot register a nil sentinel")
	}
	errRegistryMu.Lock()
	defer errRegistryMu.Unlock()
	if _, dup := errByCode[c]; dup {
		panic(fmt.Sprintf("semtree: error code %d registered twice", c))
	}
	if _, dup := codeBySent[sentinel]; dup {
		panic(fmt.Sprintf("semtree: sentinel %q registered twice", sentinel))
	}
	errRegistry = append(errRegistry, codedSentinel{code: c, err: sentinel})
	errByCode[c] = sentinel
	codeBySent[sentinel] = c
}

func init() {
	RegisterErrorCode(CodeAdmissionRejected, ErrAdmissionRejected)
	RegisterErrorCode(CodeDeadlineBudget, ErrDeadlineBudget)
	RegisterErrorCode(CodeQuotaExhausted, ErrQuotaExhausted)
	RegisterErrorCode(CodeSnapshotCorrupt, ErrSnapshotCorrupt)
	RegisterErrorCode(CodeCanceled, context.Canceled)
	RegisterErrorCode(CodeDeadlineExceeded, context.DeadlineExceeded)
}

// CodeOf returns the wire code of err: the code of the first
// registered sentinel err matches under errors.Is (registration
// order), CodeUnindexedID for the typed ErrUnindexedID, CodeUnknown
// otherwise. A nil error has no code; CodeOf(nil) returns CodeUnknown.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return CodeUnknown
	}
	var unindexed ErrUnindexedID
	if errors.As(err, &unindexed) {
		return CodeUnindexedID
	}
	errRegistryMu.RLock()
	defer errRegistryMu.RUnlock()
	for _, cs := range errRegistry {
		if errors.Is(err, cs.err) {
			return cs.code
		}
	}
	return CodeUnknown
}

// ErrorDetail returns the numeric payload a coded error carries across
// the wire: the offending triple ID for ErrUnindexedID, 0 for every
// other error.
func ErrorDetail(err error) uint64 {
	var unindexed ErrUnindexedID
	if errors.As(err, &unindexed) {
		return uint64(unindexed.ID)
	}
	return 0
}

// codedError is a decoded wire error: the remote message with the
// local sentinel attached, so errors.Is sees the same sentinel on both
// sides of the wire.
type codedError struct {
	code     ErrorCode
	msg      string
	sentinel error // nil for CodeUnknown
}

func (e *codedError) Error() string { return e.msg }
func (e *codedError) Unwrap() error { return e.sentinel }

// Code returns the wire code the error was decoded from.
func (e *codedError) Code() ErrorCode { return e.code }

// DecodeError reconstructs an error from its wire form (code, message,
// detail). For a registered code the result matches the original
// sentinel under errors.Is; CodeUnindexedID reconstructs the typed
// ErrUnindexedID from detail (so errors.As recovers the ID and the
// message is regenerated byte-identically); CodeUnknown yields a plain
// error carrying only the message. DecodeError(code, …) of a nil
// failure is not a thing: callers decode only frames that carried an
// error.
func DecodeError(c ErrorCode, msg string, detail uint64) error {
	if c == CodeUnindexedID {
		return ErrUnindexedID{ID: triple.ID(detail)}
	}
	errRegistryMu.RLock()
	sentinel := errByCode[c]
	errRegistryMu.RUnlock()
	//semtree:allow typederr: not classification — byte-identity check of the wire text against the sentinel's canonical message, to return the sentinel unwrapped
	if sentinel != nil && msg == sentinel.Error() {
		// The wire carried exactly the sentinel: return it unwrapped so
		// the decoded error is byte-identical to the in-process one.
		return sentinel
	}
	return &codedError{code: c, msg: msg, sentinel: sentinel}
}
