package semtree

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"semtree/internal/cluster"
	"semtree/internal/core"
	"semtree/internal/fastmap"
	"semtree/internal/kdtree"
	"semtree/internal/semdist"
	"semtree/internal/triple"
	"semtree/internal/vocab"
)

// Options configure Build. The zero value selects the paper's defaults:
// Wu & Palmer concept distance, weights (0.4, 0.3, 0.3), 8 FastMap
// dimensions, bucket size 16, a single partition on a private
// in-process fabric.
type Options struct {
	// Registry resolves concept prefixes; nil selects the built-in
	// vocabularies (Fun, CmdType, MsgType, InType, std).
	Registry *vocab.Registry
	// Weights are Eq. 1's α, β, γ; the zero value selects (0.4, 0.3, 0.3).
	Weights semdist.Weights
	// Measure names the concept distance ("wupalmer", "path",
	// "leacockchodorow", "resnik", "lin", "jiangconrath").
	// Empty selects "wupalmer".
	Measure string
	// NumericLiterals compares numeric literals by relative difference
	// instead of Levenshtein.
	NumericLiterals bool
	// Dims is the FastMap dimensionality k (default 8).
	Dims int
	// PivotIterations is FastMap's pivot heuristic depth (default 5).
	PivotIterations int
	// Seed drives FastMap's pivot selection (deterministic builds).
	Seed int64
	// BucketSize is the KD-tree leaf capacity Bs (default 16).
	BucketSize int
	// PartitionCapacity is the per-partition point budget before the
	// build-partition algorithm fires (0 = single partition).
	PartitionCapacity int
	// MaxPartitions is the paper's M (default 1).
	MaxPartitions int
	// Fabric carries inter-partition messages; nil selects a private
	// zero-latency in-process fabric.
	Fabric cluster.Fabric
	// Unbalanced selects the degenerate chain split policy (the
	// paper's "totally unbalanced" configuration; for benchmarks).
	Unbalanced bool
	// BatchSize is the bulk-load pipeline batch (default 64).
	BatchSize int
}

// Match is one retrieval result: a stored triple, its provenance, and
// its distance to the query in the embedded space (which approximates
// the Eq. 1 semantic distance).
type Match struct {
	ID     triple.ID
	Triple triple.Triple
	Prov   triple.Provenance
	Dist   float64
}

// Index is the SemTree facade: a triple store, the semantic metric, the
// FastMap embedding, and the distributed KD-tree over the images. All
// methods are safe for concurrent use after Build; Insert may run
// concurrently with queries.
type Index struct {
	store  *triple.Store
	metric *semdist.Metric
	mapper *fastmap.Mapper[triple.Triple]
	tree   *core.Tree
	dims   int
	opts   persistedOptions

	// mu guards coords AND the store↔coords pairing: Insert and
	// BulkAdd write the store and the embedding table under one
	// critical section, and Save reads both under it, so a snapshot
	// never observes a triple without its embedding (or vice versa).
	mu     sync.Mutex
	coords [][]float64 // embedding per stored triple, indexed by triple.ID
}

// persistedOptions are the build parameters that determine the
// embedding geometry; they are written into snapshots so a reloaded
// index answers identically.
type persistedOptions struct {
	Weights         semdist.Weights
	Measure         string
	NumericLiterals bool
	Dims            int
}

// Build embeds every triple of store with FastMap under the semantic
// metric and bulk-loads the distributed KD-tree with the images.
func Build(store *triple.Store, opts Options) (*Index, error) {
	if store == nil {
		return nil, fmt.Errorf("semtree: nil store")
	}
	reg := opts.Registry
	if reg == nil {
		reg = vocab.DefaultRegistry()
	}
	measure := semdist.ConceptMeasure(nil)
	if opts.Measure != "" {
		m, err := semdist.MeasureByName(opts.Measure)
		if err != nil {
			return nil, err
		}
		measure = m
	}
	metric, err := semdist.New(reg, semdist.Options{
		Weights:         opts.Weights,
		Concept:         measure,
		NumericLiterals: opts.NumericLiterals,
	})
	if err != nil {
		return nil, err
	}
	dims := opts.Dims
	if dims <= 0 {
		dims = 8
	}

	triples := store.Triples()
	mapper, coords, err := fastmap.Build(triples, metric.Distance, fastmap.Options{
		Dims:            dims,
		PivotIterations: opts.PivotIterations,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	tree, err := core.New(core.Config{
		Dim:               dims,
		BucketSize:        opts.BucketSize,
		PartitionCapacity: opts.PartitionCapacity,
		MaxPartitions:     opts.MaxPartitions,
		Fabric:            opts.Fabric,
		Unbalanced:        opts.Unbalanced,
	})
	if err != nil {
		return nil, err
	}
	points := make([]kdtree.Point, len(coords))
	for i, c := range coords {
		points[i] = kdtree.Point{Coords: c, ID: uint64(i)}
	}
	//semtree:allow ctxfirst: Build is construction-time and runs to completion by contract; there is no caller context to thread
	if err := tree.BulkLoad(context.Background(), points); err != nil {
		tree.Close()
		return nil, err
	}

	return &Index{
		store: store, metric: metric, mapper: mapper, tree: tree, dims: dims,
		coords: coords,
		opts: persistedOptions{
			Weights:         metric.Weights(),
			Measure:         opts.Measure,
			NumericLiterals: opts.NumericLiterals,
			Dims:            dims,
		},
	}, nil
}

// ErrUnindexedID reports a tree point whose ID has no entry in the
// triple store: the point was indexed out of band — typically a direct
// store write that left a nil placeholder behind (see Insert) — so a
// query that retrieves it cannot resolve a stored triple. The error
// names the offending ID; it is attached to the failing query's Result
// and matched with errors.As.
type ErrUnindexedID struct {
	ID triple.ID
}

func (e ErrUnindexedID) Error() string {
	return fmt.Sprintf("semtree: point ID %d has no stored triple (indexed out of band?)", e.ID)
}

// Insert adds a triple to the store and the index, returning its ID.
// When other writers added triples to the store directly (out of band),
// the skipped IDs get nil embedding placeholders: those triples are in
// the store but not in the index, and a query that somehow retrieves
// such an ID fails with ErrUnindexedID naming it.
func (ix *Index) Insert(t triple.Triple, prov triple.Provenance) (triple.ID, error) {
	c := ix.mapper.Map(t)
	// Store write and embedding append happen under one critical
	// section: a concurrent Save must never observe the triple in the
	// store without its coordinate row (or the reverse).
	ix.mu.Lock()
	id := ix.store.Add(t, prov)
	for uint64(len(ix.coords)) < uint64(id) {
		ix.coords = append(ix.coords, nil) // IDs added out of band (direct store writes)
	}
	ix.coords = append(ix.coords, c)
	ix.mu.Unlock()
	point := kdtree.Point{Coords: c, ID: uint64(id)}
	if err := ix.tree.Insert(point); err != nil {
		return id, fmt.Errorf("semtree: insert: %w", err)
	}
	return id, nil
}

// BulkItem is one triple of a bulk ingest: the triple and its
// provenance, exactly as Insert takes them.
type BulkItem struct {
	Triple triple.Triple
	Prov   triple.Provenance
}

// BulkAdd ingests a batch of triples in one pass: the embeddings are
// computed by a bounded worker pool, the store and embedding table are
// extended atomically (a concurrent Save sees all of the batch or none
// of it), and the images enter the distributed tree through its sorted
// bulk loader — balanced fragment grafts instead of per-point split
// cascades. Returned IDs are positional: ids[i] is items[i]. The
// context bounds the tree load; triples already committed to the store
// when it expires stay stored (re-running the load is idempotent only
// at the store level), so treat a context error as a partial ingest.
// Results are byte-identical to inserting the items one at a time.
func (ix *Index) BulkAdd(ctx context.Context, items []BulkItem) ([]triple.ID, error) {
	if len(items) == 0 {
		return nil, nil
	}
	coords := make([][]float64, len(items))
	_ = core.RunBatch(ctx, len(items), 0, func(i int) error {
		coords[i] = ix.mapper.Map(items[i].Triple)
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ids := make([]triple.ID, len(items))
	points := make([]kdtree.Point, len(items))
	ix.mu.Lock()
	for i, it := range items {
		id := ix.store.Add(it.Triple, it.Prov)
		for uint64(len(ix.coords)) < uint64(id) {
			ix.coords = append(ix.coords, nil) // IDs added out of band
		}
		ix.coords = append(ix.coords, coords[i])
		ids[i] = id
		points[i] = kdtree.Point{Coords: coords[i], ID: uint64(id)}
	}
	ix.mu.Unlock()
	if err := ix.tree.BulkLoad(ctx, points); err != nil {
		return ids, fmt.Errorf("semtree: bulk add: %w", err)
	}
	return ids, nil
}

// KNearest returns the k stored triples closest to q, ascending by
// embedded distance. Thin wrapper over Searcher; k <= 0 returns nil.
// The context bounds the query (cancellation and deadline).
func (ix *Index) KNearest(ctx context.Context, q triple.Triple, k int) ([]Match, error) {
	return matchesOf(ix.Searcher(WithK(k)).Search(ctx, q))
}

// Range returns every stored triple within embedded distance d of q,
// ascending by distance. Since the embedding approximates the semantic
// distance, d is on the Eq. 1 scale ([0, 1]-ish). Thin wrapper over
// Searcher.
func (ix *Index) Range(ctx context.Context, q triple.Triple, d float64) ([]Match, error) {
	// ModeRange keeps d == 0 meaning "exact embedded matches only".
	return matchesOf(ix.Searcher(WithMode(ModeRange), WithRadius(d)).Search(ctx, q))
}

// KNearestExact returns the k stored triples closest to q under the
// *exact* Eq. 1 distance: it fetches factor·k candidates from the
// embedded index (factor < 2 is raised to 2, and the candidate count is
// clamped to Len so a huge factor cannot overflow or over-request) and
// re-ranks them with the true metric. This trades extra distance
// evaluations for accuracy — the re-ranking ablation quantifies the
// gain over plain KNearest. k <= 0 returns nil, like KNearest. Thin
// wrapper over Searcher.
func (ix *Index) KNearestExact(ctx context.Context, q triple.Triple, k, factor int) ([]Match, error) {
	return matchesOf(ix.Searcher(WithK(k), WithExactFactor(factor)).Search(ctx, q))
}

// KNearestIDs implements the reqcheck.Index interface: ranked result
// IDs only.
func (ix *Index) KNearestIDs(ctx context.Context, q triple.Triple, k int) ([]triple.ID, error) {
	ms, err := ix.KNearest(ctx, q, k)
	if err != nil {
		return nil, err
	}
	ids := make([]triple.ID, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	return ids, nil
}

func (ix *Index) matches(neighbors []kdtree.Neighbor) ([]Match, error) {
	out := make([]Match, 0, len(neighbors))
	for _, n := range neighbors {
		e, ok := ix.store.Get(triple.ID(n.Point.ID))
		if !ok {
			return nil, ErrUnindexedID{ID: triple.ID(n.Point.ID)}
		}
		out = append(out, Match{
			ID:     triple.ID(n.Point.ID),
			Triple: e.Triple,
			Prov:   e.Prov,
			Dist:   n.Dist,
		})
	}
	return out, nil
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Dist != ms[j].Dist {
			return ms[i].Dist < ms[j].Dist
		}
		return ms[i].ID < ms[j].ID
	})
}

// SemanticDistance evaluates Eq. 1 between two triples under the
// index's metric (the exact, un-embedded distance).
func (ix *Index) SemanticDistance(a, b triple.Triple) float64 {
	return ix.metric.Distance(a, b)
}

// Store returns the underlying triple store.
func (ix *Index) Store() *triple.Store { return ix.store }

// Len returns the number of indexed triples.
func (ix *Index) Len() int { return ix.tree.Len() }

// Dims returns the embedding dimensionality.
func (ix *Index) Dims() int { return ix.dims }

// PartitionCount returns the number of KD-tree partitions in use.
func (ix *Index) PartitionCount() int { return ix.tree.PartitionCount() }

// Stats returns distributed-tree statistics.
func (ix *Index) Stats() (core.TreeStats, error) { return ix.tree.Stats() }

// Rebalance rebuilds the KD-tree balanced and redistributes the data
// across all budgeted partitions ("once built, modifying or rebalancing
// a Kd-tree is a non-trivial task", §III-B — this is the coordinated
// bulk-load that makes it tractable). The caller must guarantee
// quiescence: no concurrent Insert or queries.
func (ix *Index) Rebalance() error { return ix.tree.Rebalance() }

// Close releases the index's private fabric resources.
func (ix *Index) Close() error { return ix.tree.Close() }
