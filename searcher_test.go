package semtree

// Tests for the Searcher facade of the concurrent query engine: batch
// answers must agree with the single-query wrappers, degenerate inputs
// must be guarded, and batches must be safe against concurrent inserts
// (run with -race).

import (
	"math"
	"sync"
	"testing"

	"semtree/internal/synth"
	"semtree/internal/triple"
)

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func TestSearcherBatchMatchesSingle(t *testing.T) {
	ix, g := buildTestIndex(t, 800, Options{
		Seed: 3, PartitionCapacity: 100, MaxPartitions: 9, BucketSize: 8,
	})
	if ix.PartitionCount() < 4 {
		t.Fatalf("partitions = %d, want a distributed tree", ix.PartitionCount())
	}
	qs := make([]triple.Triple, 24)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}

	t.Run("knn", func(t *testing.T) {
		s := ix.Searcher(SearchOptions{K: 5, Parallelism: 4})
		batch, err := s.SearchBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			single, err := ix.KNearest(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatches(batch[i], single) {
				t.Fatalf("query %d: batch and single disagree", i)
			}
		}
	})
	t.Run("range", func(t *testing.T) {
		s := ix.Searcher(SearchOptions{Radius: 0.4, Parallelism: 4})
		batch, err := s.SearchBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			single, err := ix.Range(q, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatches(batch[i], single) {
				t.Fatalf("query %d: batch and single disagree", i)
			}
		}
	})
	t.Run("range-truncated", func(t *testing.T) {
		s := ix.Searcher(SearchOptions{Radius: 0.5, K: 3})
		res, err := s.Search(qs[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(res) > 3 {
			t.Fatalf("K did not truncate the ranged result: %d", len(res))
		}
	})
	t.Run("exact", func(t *testing.T) {
		s := ix.Searcher(SearchOptions{K: 4, ExactFactor: 3, Parallelism: 2})
		batch, err := s.SearchBatch(qs[:8])
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs[:8] {
			single, err := ix.KNearestExact(q, 4, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatches(batch[i], single) {
				t.Fatalf("query %d: exact batch and single disagree", i)
			}
		}
	})
}

func TestSearcherEmptyBatch(t *testing.T) {
	ix, _ := buildTestIndex(t, 50, Options{Seed: 3})
	res, err := ix.Searcher(SearchOptions{K: 3}).SearchBatch(nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch = %v, %v", res, err)
	}
}

// TestKNearestExactGuards pins the satellite fix: k <= 0 returns nil
// like KNearest, and degenerate factors can neither overflow k*factor
// nor request more candidates than the index holds.
func TestKNearestExactGuards(t *testing.T) {
	ix, g := buildTestIndex(t, 100, Options{Seed: 3})
	q := g.RandomTriple()
	for _, k := range []int{0, -4} {
		got, err := ix.KNearestExact(q, k, 3)
		if err != nil || got != nil {
			t.Fatalf("k=%d: got %v, %v, want nil", k, got, err)
		}
	}
	// A factor near MaxInt must not overflow or allocate wildly.
	huge, err := ix.KNearestExact(q, 3, math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if len(huge) != 3 {
		t.Fatalf("huge factor returned %d results", len(huge))
	}
	// With the candidate set clamped to Len, a huge factor degenerates
	// to exact brute-force ranking: it must agree with factor = Len.
	all, err := ix.KNearestExact(q, 3, ix.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(huge, all) {
		t.Fatalf("huge-factor ranking diverges from full re-rank")
	}
	if got, err := ix.KNearest(q, 0); err != nil || got != nil {
		t.Fatalf("KNearest k=0 = %v, %v, want nil", got, err)
	}
}

// TestSearcherConcurrentWithInsert races batched searches against
// Insert; meaningful under -race (the CI test mode).
func TestSearcherConcurrentWithInsert(t *testing.T) {
	ix, g := buildTestIndex(t, 400, Options{
		Seed: 5, PartitionCapacity: 80, MaxPartitions: 9, BucketSize: 8,
	})
	extra := synth.New(synth.Config{Seed: 99}, nil)
	qs := make([]triple.Triple, 32)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tp := range extra.Triples(300) {
			if _, err := ix.Insert(tp, triple.Provenance{Doc: "W"}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	s := ix.Searcher(SearchOptions{K: 3, Parallelism: 4})
	for round := 0; round < 6; round++ {
		res, err := s.SearchBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, ms := range res {
			if len(ms) != 3 {
				t.Fatalf("round %d query %d: %d matches", round, i, len(ms))
			}
		}
	}
	wg.Wait()
}
