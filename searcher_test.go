package semtree

// Tests for the Searcher facade of the concurrent query engine: batch
// answers must agree with the single-query wrappers, degenerate inputs
// must be guarded, and batches must be safe against concurrent inserts
// (run with -race).

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"semtree/internal/kdtree"
	"semtree/internal/synth"
	"semtree/internal/triple"
)

func sameMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func TestSearcherBatchMatchesSingle(t *testing.T) {
	ix, g := buildTestIndex(t, 800, Options{
		Seed: 3, PartitionCapacity: 100, MaxPartitions: 9, BucketSize: 8,
	})
	if ix.PartitionCount() < 4 {
		t.Fatalf("partitions = %d, want a distributed tree", ix.PartitionCount())
	}
	qs := make([]triple.Triple, 24)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}

	t.Run("knn", func(t *testing.T) {
		s := ix.Searcher(WithOptions(SearchOptions{K: 5, Parallelism: 4}))
		batch, err := s.SearchBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			single, err := ix.KNearest(context.Background(), q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i].Err != nil {
				t.Fatalf("query %d: %v", i, batch[i].Err)
			}
			if !sameMatches(batch[i].Matches, single) {
				t.Fatalf("query %d: batch and single disagree", i)
			}
		}
	})
	t.Run("range", func(t *testing.T) {
		s := ix.Searcher(WithOptions(SearchOptions{Radius: 0.4, Parallelism: 4}))
		batch, err := s.SearchBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			single, err := ix.Range(context.Background(), q, 0.4)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i].Err != nil {
				t.Fatalf("query %d: %v", i, batch[i].Err)
			}
			if !sameMatches(batch[i].Matches, single) {
				t.Fatalf("query %d: batch and single disagree", i)
			}
		}
	})
	t.Run("range-truncated", func(t *testing.T) {
		s := ix.Searcher(WithOptions(SearchOptions{Radius: 0.5, K: 3}))
		res, err := s.Search(context.Background(), qs[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) > 3 {
			t.Fatalf("K did not truncate the ranged result: %d", len(res.Matches))
		}
	})
	t.Run("exact", func(t *testing.T) {
		s := ix.Searcher(WithOptions(SearchOptions{K: 4, ExactFactor: 3, Parallelism: 2}))
		batch, err := s.SearchBatch(context.Background(), qs[:8])
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs[:8] {
			single, err := ix.KNearestExact(context.Background(), q, 4, 3)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i].Err != nil {
				t.Fatalf("query %d: %v", i, batch[i].Err)
			}
			if !sameMatches(batch[i].Matches, single) {
				t.Fatalf("query %d: exact batch and single disagree", i)
			}
		}
	})
}

func TestSearcherEmptyBatch(t *testing.T) {
	ix, _ := buildTestIndex(t, 50, Options{Seed: 3})
	res, err := ix.Searcher(WithOptions(SearchOptions{K: 3})).SearchBatch(context.Background(), nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch = %v, %v", res, err)
	}
}

// TestKNearestExactGuards pins the satellite fix: k <= 0 returns nil
// like KNearest, and degenerate factors can neither overflow k*factor
// nor request more candidates than the index holds.
func TestKNearestExactGuards(t *testing.T) {
	ix, g := buildTestIndex(t, 100, Options{Seed: 3})
	q := g.RandomTriple()
	for _, k := range []int{0, -4} {
		got, err := ix.KNearestExact(context.Background(), q, k, 3)
		if err != nil || got != nil {
			t.Fatalf("k=%d: got %v, %v, want nil", k, got, err)
		}
	}
	// A factor near MaxInt must not overflow or allocate wildly.
	huge, err := ix.KNearestExact(context.Background(), q, 3, math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if len(huge) != 3 {
		t.Fatalf("huge factor returned %d results", len(huge))
	}
	// With the candidate set clamped to Len, a huge factor degenerates
	// to exact brute-force ranking: it must agree with factor = Len.
	all, err := ix.KNearestExact(context.Background(), q, 3, ix.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(huge, all) {
		t.Fatalf("huge-factor ranking diverges from full re-rank")
	}
	if got, err := ix.KNearest(context.Background(), q, 0); err != nil || got != nil {
		t.Fatalf("KNearest k=0 = %v, %v, want nil", got, err)
	}
}

// TestSearcherConcurrentWithInsert races batched searches against
// Insert; meaningful under -race (the CI test mode).
func TestSearcherConcurrentWithInsert(t *testing.T) {
	ix, g := buildTestIndex(t, 400, Options{
		Seed: 5, PartitionCapacity: 80, MaxPartitions: 9, BucketSize: 8,
	})
	extra := synth.New(synth.Config{Seed: 99}, nil)
	qs := make([]triple.Triple, 32)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tp := range extra.Triples(300) {
			if _, err := ix.Insert(tp, triple.Provenance{Doc: "W"}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	s := ix.Searcher(WithOptions(SearchOptions{K: 3, Parallelism: 4}))
	for round := 0; round < 6; round++ {
		res, err := s.SearchBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("round %d query %d: %v", round, i, r.Err)
			}
			if len(r.Matches) != 3 {
				t.Fatalf("round %d query %d: %d matches", round, i, len(r.Matches))
			}
		}
	}
	wg.Wait()
}

// TestSearchBatchPerQueryError pins the redesigned error contract: a
// query that retrieves an unindexed point carries ErrUnindexedID in its
// own Result, and the healthy queries of the batch still answer.
func TestSearchBatchPerQueryError(t *testing.T) {
	ix, g := buildTestIndex(t, 60, Options{Seed: 7})
	// Index a point out of band: it exists in the tree but has no
	// stored triple, so resolving it must fail with the typed error.
	phantomID := uint64(100000)
	if err := ix.tree.Insert(kdtree.Point{Coords: make([]float64, ix.Dims()), ID: phantomID}); err != nil {
		t.Fatal(err)
	}
	qs := make([]triple.Triple, 8)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}
	// K large enough that every query retrieves the phantom point.
	res, err := ix.Searcher(WithOptions(SearchOptions{K: ix.Len() + 1, Parallelism: 2})).SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatalf("batch-level error for a per-query failure: %v", err)
	}
	sawTyped := false
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("query %d retrieved the phantom point without error", i)
		}
		var unindexed ErrUnindexedID
		if errors.As(r.Err, &unindexed) {
			sawTyped = true
			if uint64(unindexed.ID) != phantomID {
				t.Fatalf("query %d: ErrUnindexedID names %d, want %d", i, unindexed.ID, phantomID)
			}
		}
	}
	if !sawTyped {
		t.Fatal("no query surfaced ErrUnindexedID")
	}
	// A small K that cannot reach the phantom answers cleanly — the
	// poisoned index is only poisoned for queries that touch the hole.
	res, err = ix.Searcher(WithOptions(SearchOptions{K: 1})).SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || len(r.Matches) != 1 {
			t.Fatalf("query %d: %v (%d matches)", i, r.Err, len(r.Matches))
		}
	}
}

// TestSearchCancelled: an already-done context fails fast at every
// facade entry point with the context's error.
func TestSearchCancelled(t *testing.T) {
	ix, g := buildTestIndex(t, 60, Options{Seed: 7})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := g.RandomTriple()
	if _, err := ix.KNearest(ctx, q, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNearest err = %v", err)
	}
	if _, err := ix.Range(ctx, q, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Range err = %v", err)
	}
	if _, err := ix.KNearestIDs(ctx, q, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNearestIDs err = %v", err)
	}
	res, err := ix.Searcher(WithOptions(SearchOptions{K: 3})).SearchBatch(ctx, []triple.Triple{q, q})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatch err = %v", err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d err = %v", i, r.Err)
		}
	}
}

// TestSearchExecStats: every Result reports the work its query did,
// including the exact re-rank's extra distance evaluations.
func TestSearchExecStats(t *testing.T) {
	ix, g := buildTestIndex(t, 800, Options{
		Seed: 3, PartitionCapacity: 100, MaxPartitions: 9, BucketSize: 8,
	})
	qs := make([]triple.Triple, 6)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}
	res, err := ix.Searcher(WithOptions(SearchOptions{K: 4, Parallelism: 2})).SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		st := r.Stats
		if st.NodesVisited <= 0 || st.BucketsScanned <= 0 || st.DistanceEvals <= 0 {
			t.Fatalf("query %d: empty traversal counters %+v", i, st)
		}
		if st.FabricMessages < 1 || st.Partitions < 1 || st.Wall <= 0 {
			t.Fatalf("query %d: empty transport counters %+v", i, st)
		}
		if st.Protocol == "" {
			t.Fatalf("query %d: protocol not stamped", i)
		}
	}
	// Exact mode charges the re-rank evaluations on top.
	plain, err := ix.Searcher(WithOptions(SearchOptions{K: 4})).Search(context.Background(), qs[0])
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ix.Searcher(WithOptions(SearchOptions{K: 4, ExactFactor: 4})).Search(context.Background(), qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.DistanceEvals <= plain.Stats.DistanceEvals {
		t.Fatalf("exact re-rank did not add distance evals: %d vs %d",
			exact.Stats.DistanceEvals, plain.Stats.DistanceEvals)
	}
}

// TestSearcherSchedulerOptions: the scheduler options must plumb
// through the facade — protocol pinning answers identically, the
// max-in-flight limit sheds surplus load with the typed error, and
// SchedulerStats reports the counters and estimates.
func TestSearcherSchedulerOptions(t *testing.T) {
	ix, g := buildTestIndex(t, 600, Options{
		Seed: 5, PartitionCapacity: 80, MaxPartitions: 9, BucketSize: 8,
	})
	qs := make([]triple.Triple, 12)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}

	// The three protocols must answer identically (the core engine's
	// equivalence, re-asserted through the facade).
	auto := ix.Searcher(WithOptions(SearchOptions{K: 4, Parallelism: 4}))
	seq := ix.Searcher(WithOptions(SearchOptions{K: 4, Parallelism: 4}), WithProtocol(ProtocolSequential))
	fan := ix.Searcher(WithOptions(SearchOptions{K: 4, Parallelism: 4}), WithProtocol(ProtocolFanOut))
	resAuto, err := auto.SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	resSeq, err := seq.SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	resFan, err := fan.SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if resAuto[i].Err != nil || resSeq[i].Err != nil || resFan[i].Err != nil {
			t.Fatalf("query %d errored: %v %v %v", i, resAuto[i].Err, resSeq[i].Err, resFan[i].Err)
		}
		if !sameMatches(resAuto[i].Matches, resSeq[i].Matches) || !sameMatches(resAuto[i].Matches, resFan[i].Matches) {
			t.Fatalf("query %d: protocols disagree through the facade", i)
		}
	}

	st := auto.SchedulerStats()
	if st.Admitted != int64(len(qs)) {
		t.Fatalf("auto searcher admitted %d, want %d", st.Admitted, len(qs))
	}
	if st.NodeCompute <= 0 || st.EstSequentialWall <= 0 {
		t.Fatalf("estimates not learned: %+v", st)
	}
	if len(st.Choices) == 0 {
		t.Fatalf("empty protocol-choice histogram: %+v", st)
	}

	// A 1-slot searcher with no admission queue sheds concurrent
	// surplus with ErrAdmissionRejected, attributed per query.
	limited := ix.Searcher(WithOptions(SearchOptions{K: 4, Parallelism: 8, QueueDepth: -1}), WithMaxInFlight(1))
	res, err := limited.SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	answered, shed := 0, 0
	for i, r := range res {
		switch {
		case r.Err == nil:
			answered++
		case errors.Is(r.Err, ErrAdmissionRejected):
			shed++
		default:
			t.Fatalf("query %d: unexpected error %v", i, r.Err)
		}
	}
	if answered == 0 {
		t.Fatal("1-slot searcher answered nothing")
	}
	lst := limited.SchedulerStats()
	if lst.Admitted != int64(answered) || lst.RejectedLoad != int64(shed) {
		t.Fatalf("limited stats %+v vs answered=%d shed=%d", lst, answered, shed)
	}

	// Admission control: once the model knows a query's cost, a
	// microscopic deadline budget is rejected up front.
	guarded := ix.Searcher(WithOptions(SearchOptions{K: 4}), WithAdmissionControl(true))
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	gres, _ := guarded.SearchBatch(ctx, qs[:1])
	if gres[0].Err == nil {
		t.Fatal("nanosecond budget accepted")
	}
	if !errors.Is(gres[0].Err, ErrDeadlineBudget) && !errors.Is(gres[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineBudget or DeadlineExceeded", gres[0].Err)
	}
}

// TestSearcherQuota: the WithQuota option enforces a per-searcher cost
// quota through the facade — a zero-capacity tenant is fully rejected
// with ErrQuotaExhausted and metered at zero, a quota'd tenant
// hammering past its budget is throttled while an unthrottled searcher
// over the same index is untouched, and SchedulerStats reports the
// bucket and the metered totals.
func TestSearcherQuota(t *testing.T) {
	ix, g := buildTestIndex(t, 600, Options{
		Seed: 7, PartitionCapacity: 100, MaxPartitions: 5, BucketSize: 8,
	})
	qs := make([]triple.Triple, 30)
	for i := range qs {
		qs[i] = g.RandomTriple()
	}

	// Zero capacity admits nothing and spends nothing.
	drained := ix.Searcher(WithOptions(SearchOptions{K: 3}), WithQuota(0, 1000))
	res, err := drained.SearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, ErrQuotaExhausted) {
			t.Fatalf("query %d: err = %v, want ErrQuotaExhausted", i, r.Err)
		}
	}
	dst := drained.SchedulerStats()
	if dst.RejectedQuota != int64(len(qs)) || dst.Admitted != 0 || dst.MeteredCost != 0 {
		t.Fatalf("drained stats = %+v, want all quota-rejected, nothing metered", dst)
	}
	if !dst.QuotaEnabled || dst.QuotaCapacity != 0 {
		t.Fatalf("drained quota snapshot = %+v, want enabled zero bucket", dst)
	}

	// A small bucket with no refill throttles a hammering tenant after
	// its burst; an unthrottled searcher on the same index is unaffected.
	throttled := ix.Searcher(WithOptions(SearchOptions{K: 3, Quota: &QuotaConfig{Capacity: 2000}}))
	open := ix.Searcher(WithOptions(SearchOptions{K: 3}))
	okCount, shed := 0, 0
	for _, q := range qs {
		_, err := throttled.Search(context.Background(), q)
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, ErrQuotaExhausted):
			shed++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if okCount == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d, want a burst then throttling", okCount, shed)
	}
	for i, q := range qs {
		if _, err := open.Search(context.Background(), q); err != nil {
			t.Fatalf("open tenant query %d: %v", i, err)
		}
	}
	tst, ost := throttled.SchedulerStats(), open.SchedulerStats()
	if tst.Admitted != int64(okCount) || tst.RejectedQuota != int64(shed) {
		t.Fatalf("throttled stats %+v vs ok=%d shed=%d", tst, okCount, shed)
	}
	if ost.RejectedQuota != 0 || ost.Admitted != int64(len(qs)) {
		t.Fatalf("open tenant polluted: %+v", ost)
	}
	if tst.MeteredCost <= 0 || tst.MeteredFabricMessages == 0 {
		t.Fatalf("throttled tenant metered nothing: %+v", tst)
	}
	if tst.QuotaLevel < 0 || tst.QuotaLevel > tst.QuotaCapacity {
		t.Fatalf("bucket level %v outside [0, %v]", tst.QuotaLevel, tst.QuotaCapacity)
	}
}

// TestSearchOptionCompleteness reflects over every field of
// SearchOptions and requires a functional option that sets it: the
// variadic surface is the canonical configuration API (and the single
// source of truth for wire-request decoding in internal/serve), so a
// new struct field without a matching With* option must fail this
// test, not ship half-configured.
func TestSearchOptionCompleteness(t *testing.T) {
	// One option per field, each setting a non-zero value.
	setters := map[string]SearchOption{
		"Mode":             WithMode(ModeRange),
		"K":                WithK(7),
		"Radius":           WithRadius(0.25),
		"ExactFactor":      WithExactFactor(3),
		"Parallelism":      WithParallelism(5),
		"Protocol":         WithProtocol(ProtocolFanOut),
		"MaxInFlight":      WithMaxInFlight(11),
		"QueueDepth":       WithQueueDepth(13),
		"AdmissionControl": WithAdmissionControl(true),
		"Quota":            WithQuota(100, 10),
	}
	typ := reflect.TypeOf(SearchOptions{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		opt, ok := setters[f.Name]
		if !ok {
			t.Errorf("SearchOptions.%s has no functional option in this test's table: add With%s and list it here",
				f.Name, f.Name)
			continue
		}
		var o SearchOptions
		opt(&o)
		if reflect.ValueOf(o).Field(i).IsZero() {
			t.Errorf("the option registered for SearchOptions.%s does not set the field", f.Name)
		}
	}
	if len(setters) != typ.NumField() {
		t.Errorf("option table lists %d fields, SearchOptions has %d", len(setters), typ.NumField())
	}
}

// TestWithOptionsMerge: the deprecated struct adapter layers non-zero
// fields over the accumulated configuration instead of erasing it, so
// migrated call sites compose with fine-grained options on either side.
func TestWithOptionsMerge(t *testing.T) {
	var o SearchOptions
	for _, opt := range []SearchOption{
		WithK(4),
		WithParallelism(6),
		WithOptions(SearchOptions{K: 9, Radius: 0.5}), // overrides K, leaves Parallelism
	} {
		opt(&o)
	}
	if o.K != 9 || o.Radius != 0.5 || o.Parallelism != 6 {
		t.Fatalf("merge got %+v, want K=9 Radius=0.5 Parallelism=6", o)
	}
	// Applied to a zero base, WithOptions reproduces the struct exactly
	// (the mechanical migration path for the old signature).
	src := SearchOptions{Mode: ModeRange, K: 3, Radius: 0.4, ExactFactor: 2,
		Parallelism: 8, Protocol: ProtocolSequential, MaxInFlight: 2,
		QueueDepth: -1, AdmissionControl: true, Quota: &QuotaConfig{Capacity: 10}}
	var got SearchOptions
	WithOptions(src)(&got)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("WithOptions on a zero base: got %+v, want %+v", got, src)
	}
}
